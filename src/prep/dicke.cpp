#include "prep/dicke.hpp"

#include <cmath>
#include <stdexcept>

#include "util/assert.hpp"

namespace qsp {
namespace {

/// Two-qubit split gate G(theta): rotation in span{|01>, |10>} of qubits
/// (a, b) with |01> -> cos(theta/2)|01> + sin(theta/2)|10>; fixes |00> and
/// |11>. Realized as CNOT(a->b), CRy(theta, b->a), CNOT(a->b).
void emit_split(Circuit& c, int a, int b, double theta) {
  c.append(Gate::cnot(a, b));
  c.append(Gate::cry(b, a, theta));
  c.append(Gate::cnot(a, b));
}

/// Controlled split: same rotation, active only when qubit `ctrl` is |1>.
void emit_controlled_split(Circuit& c, int a, int b, int ctrl, double theta) {
  c.append(Gate::cnot(a, b));
  c.append(Gate::mcry({ControlLiteral{b, true}, ControlLiteral{ctrl, true}},
                      a, theta));
  c.append(Gate::cnot(a, b));
}

/// Split & cyclic shift block SCS_{m,l} acting on qubits 0..m-1:
/// maps |0^{m-j} 1^j> to sqrt(j/m)|0^{m-j}1^{j-1}>|1>_last +
/// sqrt((m-j)/m) |0^{m-j-1}1^j 0>_last for every j <= l.
void emit_scs(Circuit& c, int m, int l) {
  // Gate (i): split between qubits m-2 and m-1 with cos = sqrt(1/m).
  const double theta1 =
      2.0 * std::acos(std::sqrt(1.0 / static_cast<double>(m)));
  emit_split(c, m - 2, m - 1, theta1);
  // Gates (ii)_j, j = 2..l: controlled splits moving the excitation
  // farther left, with cos = sqrt(j/m).
  for (int j = 2; j <= l; ++j) {
    const double theta = 2.0 * std::acos(std::sqrt(
                             static_cast<double>(j) / static_cast<double>(m)));
    emit_controlled_split(c, m - 1 - j, m - 1, m - j, theta);
  }
}

}  // namespace

std::int64_t mukherjee_dicke_cnot_count(int n, int k) {
  if (k < 1 || 2 * k > n) {
    throw std::invalid_argument(
        "mukherjee_dicke_cnot_count: requires 1 <= k <= n/2");
  }
  return std::int64_t{5} * n * k - std::int64_t{5} * k * k - 2 * n;
}

Circuit dicke_manual_circuit(int n, int k) {
  if (n < 2 || k < 1 || k >= n) {
    throw std::invalid_argument("dicke_manual_circuit: need 2<=n, 1<=k<n");
  }
  Circuit c(n);
  // Input |0^{n-k} 1^k>: the k highest qubits carry the excitations.
  for (int q = n - k; q < n; ++q) c.append(Gate::x(q));
  // U_{n,k} = product of SCS blocks on shrinking prefixes.
  for (int m = n; m >= 2; --m) {
    emit_scs(c, m, std::min(k, m - 1));
  }
  return c;
}

}  // namespace qsp
