#pragma once
// The cardinality-reduction baseline ("m-flow", Gleinig & Hoefler,
// DAC'21). Working in the reverse direction (target -> ground), each
// iteration picks two support indices, aligns them with CNOTs until they
// differ in one qubit, isolates the pair with a greedy-minimal control set
// and merges them with a (multi-)controlled Ry; the preparation circuit is
// the adjoint of the recorded sequence. Handles arbitrary signed real
// amplitudes.

#include <functional>

#include "circuit/circuit.hpp"
#include "state/quantum_state.hpp"

namespace qsp {

struct MFlowOptions {
  enum class PairStrategy {
    /// Gleinig-Hoefler greedy: a minimum-Hamming-distance pair.
    kGreedyFirst,
    /// Cost-aware: evaluate several minimum-distance candidates and pick
    /// the cheapest merge (used by "ours" in the sparse workflow).
    kCheapest,
    /// Deepest-shared-prefix pair (decision-diagram order; used by the
    /// hybrid surrogate).
    kPrefixAdjacent,
  };
  PairStrategy strategy = PairStrategy::kGreedyFirst;
  /// Candidate pairs evaluated under kCheapest.
  int cheapest_candidates = 16;
  /// Abort after this many seconds (0 = unlimited).
  double time_budget_seconds = 0.0;
};

struct MFlowResult {
  bool timed_out = false;
  Circuit circuit{1};
};

/// Full preparation circuit for `target`.
MFlowResult mflow_prepare(const QuantumState& target,
                          const MFlowOptions& options = {});

/// Run merge iterations until `stop(current)` returns true (checked before
/// every merge) or cardinality reaches 1. Returns the *forward* gates
/// (mapping target towards ground) and the reduced state, so a workflow
/// can append an exact tail: target = adjoint(forward) * reduced.
struct MFlowReduction {
  bool timed_out = false;
  std::vector<Gate> forward_gates;
  QuantumState reduced{1};
};

MFlowReduction mflow_reduce(
    const QuantumState& target,
    const std::function<bool(const QuantumState&)>& stop,
    const MFlowOptions& options = {});

}  // namespace qsp
