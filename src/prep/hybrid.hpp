#pragma once
// Surrogate for the "hybrid" baseline (Mozafari et al., PRA 106:022617,
// 2022): a decision-diagram-guided preparation using one ancilla qubit.
//
// Substitution note: the published algorithm walks a
// reduced decision diagram and uses the ancilla to track path conditions
// with linear-cost multi-controlled gates. We reproduce its cost class by
// (a) merging support pairs in decision-diagram order (deepest shared
// prefix first, no cost-aware pair selection) and (b) charging each
// multi-controlled rotation the one-ancilla linear-cost decomposition
// min(2^c, 6(2c-3)) instead of the ancilla-free 2^c. The emitted circuit
// carries the ancilla as qubit n (ending in |0>), and verification runs on
// the primitive gates.

#include <cstdint>

#include "circuit/circuit.hpp"
#include "state/quantum_state.hpp"

namespace qsp {

struct HybridResult {
  bool timed_out = false;
  /// Register is target.num_qubits() + 1; the last qubit is the ancilla.
  Circuit circuit{2};
  /// CNOT count under the one-ancilla linear-cost accounting.
  std::int64_t accounted_cnots = 0;
};

/// CNOT cost of one gate under the hybrid's one-ancilla accounting.
std::int64_t hybrid_gate_cost(const Gate& gate);

/// CNOT cost of a circuit under the hybrid accounting.
std::int64_t hybrid_cnot_count(const Circuit& circuit);

/// Prepare `target` with the one-ancilla decision-diagram surrogate.
/// A zero time budget means unlimited.
HybridResult hybrid_prepare(const QuantumState& target,
                            double time_budget_seconds = 0.0);

}  // namespace qsp
