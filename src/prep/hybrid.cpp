#include "prep/hybrid.hpp"

#include <algorithm>

#include "circuit/cost_model.hpp"
#include "prep/mflow.hpp"

namespace qsp {

std::int64_t hybrid_gate_cost(const Gate& gate) {
  const int c = gate.num_controls();
  if (gate.kind() == GateKind::kMCRy && c >= 2) {
    // One-ancilla linear-cost decomposition: 2(c-1) - 1 Toffoli-class
    // gates at 6 CNOTs each, capped by the ancilla-free multiplexor.
    const std::int64_t linear = 6 * (2 * static_cast<std::int64_t>(c) - 3);
    return std::min(gate_cnot_cost(gate), linear);
  }
  return gate_cnot_cost(gate);
}

std::int64_t hybrid_cnot_count(const Circuit& circuit) {
  std::int64_t total = 0;
  for (const Gate& g : circuit.gates()) total += hybrid_gate_cost(g);
  return total;
}

HybridResult hybrid_prepare(const QuantumState& target,
                            double time_budget_seconds) {
  MFlowOptions options;
  options.strategy = MFlowOptions::PairStrategy::kPrefixAdjacent;
  options.time_budget_seconds = time_budget_seconds;
  const MFlowResult inner = mflow_prepare(target, options);

  HybridResult result;
  result.timed_out = inner.timed_out;
  Circuit with_ancilla(target.num_qubits() + 1);
  if (!inner.timed_out) {
    with_ancilla.append(inner.circuit);
    result.accounted_cnots = hybrid_cnot_count(with_ancilla);
  }
  result.circuit = std::move(with_ancilla);
  return result;
}

}  // namespace qsp
