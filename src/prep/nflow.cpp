#include "prep/nflow.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/assert.hpp"
#include "util/bitops.hpp"

namespace qsp {
namespace {

/// Squared-amplitude mass per k-bit prefix (low k bits of the index).
std::unordered_map<BasisIndex, double> prefix_weights(
    const QuantumState& target, int k) {
  std::unordered_map<BasisIndex, double> w;
  const BasisIndex mask = (k >= 32) ? ~BasisIndex{0}
                                    : ((BasisIndex{1} << k) - 1);
  for (const Term& t : target.terms()) {
    w[t.index & mask] += t.amplitude * t.amplitude;
  }
  return w;
}

/// Stage-k pattern angles: for each prefix p the rotation moving the
/// branch mass onto its two children. The deepest stage sees the signed
/// target amplitudes directly, so arbitrary sign patterns are prepared
/// exactly (a global -1 being unobservable).
std::vector<double> stage_angles(const QuantumState& target, int k) {
  const int n = target.num_qubits();
  std::vector<double> angles(std::size_t{1} << k, 0.0);
  const BasisIndex bit = BasisIndex{1} << k;
  if (k == n - 1) {
    for (BasisIndex p = 0; p < (BasisIndex{1} << k); ++p) {
      const double a0 = target.amplitude(p);
      const double a1 = target.amplitude(p | bit);
      if (a0 == 0.0 && a1 == 0.0) continue;
      angles[p] = 2.0 * std::atan2(a1, a0);
    }
  } else {
    const auto w = prefix_weights(target, k + 1);
    for (BasisIndex p = 0; p < (BasisIndex{1} << k); ++p) {
      const auto it0 = w.find(p);
      const auto it1 = w.find(p | bit);
      const double w0 = it0 == w.end() ? 0.0 : it0->second;
      const double w1 = it1 == w.end() ? 0.0 : it1->second;
      if (w0 == 0.0 && w1 == 0.0) continue;
      angles[p] = 2.0 * std::atan2(std::sqrt(w1), std::sqrt(w0));
    }
  }
  return angles;
}

}  // namespace

Circuit nflow_stages(const QuantumState& target, int start_qubit) {
  const int n = target.num_qubits();
  if (start_qubit < 0 || start_qubit > n) {
    throw std::invalid_argument("nflow_stages: start qubit out of range");
  }
  Circuit circuit(n);
  for (int k = start_qubit; k < n; ++k) {
    std::vector<double> angles = stage_angles(target, k);
    if (k == 0) {
      circuit.append(Gate::ry(0, angles[0]));
      continue;
    }
    std::vector<int> controls(static_cast<std::size_t>(k));
    for (int c = 0; c < k; ++c) controls[static_cast<std::size_t>(c)] = c;
    circuit.append(Gate::ucry(controls, k, std::move(angles)));
  }
  return circuit;
}

Circuit nflow_prepare(const QuantumState& target) {
  return nflow_stages(target, 0);
}

QuantumState nflow_marginal(const QuantumState& target, int k) {
  if (k < 1 || k > target.num_qubits()) {
    throw std::invalid_argument("nflow_marginal: k out of range");
  }
  const auto w = prefix_weights(target, k);
  std::vector<Term> terms;
  terms.reserve(w.size());
  for (const auto& [p, weight] : w) {
    terms.push_back(Term{p, std::sqrt(weight)});
  }
  return QuantumState(k, std::move(terms));
}

}  // namespace qsp
