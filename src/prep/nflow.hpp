#pragma once
// The qubit-reduction baseline ("n-flow", Mozafari et al. IWLS'19 /
// Grover-Rudolph construction). Stage k applies a uniformly-controlled Ry
// on qubit k conditioned on qubits 0..k-1, with angles derived from the
// target's conditional amplitude tree. Prepares any real-amplitude state
// exactly; the plain lowering of the multiplexor chain costs exactly
// 2^n - 2 CNOTs, matching the published n-flow column of Table V.

#include "circuit/circuit.hpp"
#include "state/quantum_state.hpp"

namespace qsp {

/// Full preparation circuit (stages 0 .. n-1).
Circuit nflow_prepare(const QuantumState& target);

/// Only stages `start_qubit` .. n-1 (used by the workflow: the marginal on
/// qubits 0..start_qubit-1 is prepared by the exact tail first).
Circuit nflow_stages(const QuantumState& target, int start_qubit);

/// Marginal state on qubits 0..k-1: amplitude(p) = sqrt of the summed
/// squared amplitudes of all indices extending prefix p. Always
/// non-negative.
QuantumState nflow_marginal(const QuantumState& target, int k);

}  // namespace qsp
