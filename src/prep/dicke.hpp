#pragma once
// Manual Dicke-state designs (paper Section VI-B).
//
// * The CNOT-count formula of the best published manual design
//   (Mukherjee et al., IEEE TQE 2020): 5nk - 5k^2 - 2n. Table IV's
//   "Manual" column is this formula.
// * An executable manual construction (Bartschi & Eidenbenz, FCT 2019):
//   the split & cyclic shift (SCS) network, built from two-qubit splits
//   (CNOT + CRy + CNOT) and their controlled three-qubit versions. This
//   gives a real, verifiable manual-design artifact.

#include <cstdint>

#include "circuit/circuit.hpp"

namespace qsp {

/// Mukherjee et al. CNOT count for |D^k_n>; requires 1 <= k <= n/2.
std::int64_t mukherjee_dicke_cnot_count(int n, int k);

/// Bartschi-Eidenbenz deterministic Dicke preparation circuit.
Circuit dicke_manual_circuit(int n, int k);

}  // namespace qsp
