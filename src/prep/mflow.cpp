#include "prep/mflow.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "circuit/cost_model.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"
#include "util/timer.hpp"

namespace qsp {
namespace {

constexpr double kZeroAmplitude = 1e-12;

struct TermEntry {
  BasisIndex index;
  double amplitude;
};

class Engine {
 public:
  Engine(const QuantumState& target, const MFlowOptions& options)
      : n_(target.num_qubits()),
        options_(options),
        deadline_(options.time_budget_seconds) {
    terms_.reserve(target.terms().size());
    for (const Term& t : target.terms()) {
      terms_.push_back(TermEntry{t.index, t.amplitude});
    }
    sort_terms();
  }

  bool expired() const { return deadline_.expired(); }
  std::size_t cardinality() const { return terms_.size(); }
  const std::vector<Gate>& gates() const { return gates_; }

  QuantumState current_state() const {
    std::vector<Term> terms;
    terms.reserve(terms_.size());
    for (const TermEntry& t : terms_) terms.push_back(Term{t.index, t.amplitude});
    return QuantumState(n_, std::move(terms));
  }

  /// One merge iteration: pick a pair/orientation/pivot, unify, isolate,
  /// rotate.
  void merge_step() {
    QSP_ASSERT(terms_.size() > 1);
    const MergePlan plan = select_plan();
    BasisIndex x1 = plan.keep;
    BasisIndex x2 = plan.drop;

    // Unify: make the pair differ in exactly one qubit (the pivot).
    BasisIndex dif = flip_bit(x1 ^ x2, plan.pivot);
    const bool pivot_positive = get_bit(x2, plan.pivot) == 1;
    while (dif != 0) {
      const int q = std::countr_zero(dif);
      dif = flip_bit(dif, q);
      apply_cnot(plan.pivot, pivot_positive, q);
      x2 = flip_bit(x2, q);
    }
    QSP_ASSERT((x1 ^ x2) == (BasisIndex{1} << plan.pivot));

    // Isolate the pair from the rest of the support and merge.
    const std::vector<ControlLiteral> controls =
        greedy_controls(support_indices(), x1, plan.pivot);
    apply_merge(x1, x2, plan.pivot, controls);
  }

  /// Map the final single index to |0...0> with free X gates.
  void finish() {
    QSP_ASSERT(terms_.size() == 1);
    BasisIndex x = terms_[0].index;
    while (x != 0) {
      const int q = std::countr_zero(x);
      x = flip_bit(x, q);
      gates_.push_back(Gate::x(q));
    }
    terms_[0].index = 0;
    // A leftover amplitude of -1 is an unobservable global sign.
  }

 private:
  void sort_terms() {
    std::sort(terms_.begin(), terms_.end(),
              [](const TermEntry& a, const TermEntry& b) {
                return a.index < b.index;
              });
  }

  void apply_cnot(int control, bool positive, int target) {
    const int want = positive ? 1 : 0;
    for (TermEntry& t : terms_) {
      if (get_bit(t.index, control) == want) {
        t.index = flip_bit(t.index, target);
      }
    }
    sort_terms();
    gates_.push_back(Gate::cnot(control, target, positive));
  }

  double amplitude_of(BasisIndex x) const {
    const auto it = std::lower_bound(
        terms_.begin(), terms_.end(), x,
        [](const TermEntry& t, BasisIndex v) { return t.index < v; });
    if (it != terms_.end() && it->index == x) return it->amplitude;
    return 0.0;
  }

  std::vector<BasisIndex> support_indices() const {
    std::vector<BasisIndex> out;
    out.reserve(terms_.size());
    for (const TermEntry& t : terms_) out.push_back(t.index);
    return out;
  }

  /// Greedy minimal control set distinguishing {x1, x1 ^ e_pivot} from the
  /// rest of `support`.
  std::vector<ControlLiteral> greedy_controls(
      const std::vector<BasisIndex>& support, BasisIndex x1,
      int pivot) const {
    std::vector<BasisIndex> candidates;
    const BasisIndex x2 = flip_bit(x1, pivot);
    for (const BasisIndex y : support) {
      if (y != x1 && y != x2) candidates.push_back(y);
    }
    std::vector<ControlLiteral> controls;
    std::vector<bool> used(static_cast<std::size_t>(n_), false);
    used[static_cast<std::size_t>(pivot)] = true;
    while (!candidates.empty()) {
      int best_q = -1;
      std::size_t best_elim = 0;
      for (int q = 0; q < n_; ++q) {
        if (used[static_cast<std::size_t>(q)]) continue;
        std::size_t elim = 0;
        for (const BasisIndex y : candidates) {
          if (get_bit(y, q) != get_bit(x1, q)) ++elim;
        }
        if (elim > best_elim) {
          best_elim = elim;
          best_q = q;
        }
      }
      // Progress is guaranteed: a candidate matching x1 on every qubit but
      // the pivot would be x1 or x2, which are excluded.
      QSP_ASSERT(best_q >= 0);
      used[static_cast<std::size_t>(best_q)] = true;
      controls.push_back(
          ControlLiteral{best_q, get_bit(x1, best_q) == 1});
      std::erase_if(candidates, [&](BasisIndex y) {
        return get_bit(y, best_q) != get_bit(x1, best_q);
      });
    }
    return controls;
  }

  /// Rotate the isolated pair so all mass lands on x1; removes x2.
  void apply_merge(BasisIndex x1, BasisIndex x2, int pivot,
                   const std::vector<ControlLiteral>& controls) {
    const double a1 = amplitude_of(x1);
    const double a2 = amplitude_of(x2);
    QSP_ASSERT(std::abs(a2) > kZeroAmplitude);
    const bool x1_high = get_bit(x1, pivot) == 1;
    const double u0 = x1_high ? a2 : a1;
    const double u1 = x1_high ? a1 : a2;
    // Ry(theta) sends (u0, u1) to (h, 0) or (0, h) with h > 0, landing the
    // merged amplitude on x1's side of the pivot.
    const double theta = x1_high ? 2.0 * std::atan2(u0, u1)
                                 : -2.0 * std::atan2(u1, u0);
    gates_.push_back(Gate::mcry(controls, pivot, theta));

    // Apply the rotation to every control-satisfying pair (only x1/x2 by
    // construction, but the general update keeps the engine robust).
    const double co = std::cos(theta / 2);
    const double si = std::sin(theta / 2);
    const BasisIndex pbit = BasisIndex{1} << pivot;
    std::vector<TermEntry> next;
    next.reserve(terms_.size());
    std::unordered_map<BasisIndex, std::pair<double, double>> pairs;
    for (const TermEntry& t : terms_) {
      bool satisfied = true;
      for (const ControlLiteral& c : controls) {
        if (get_bit(t.index, c.qubit) != (c.positive ? 1 : 0)) {
          satisfied = false;
          break;
        }
      }
      if (!satisfied) {
        next.push_back(t);
        continue;
      }
      auto& [v0, v1] = pairs[t.index & ~pbit];
      ((t.index & pbit) == 0 ? v0 : v1) = t.amplitude;
    }
    for (const auto& [rest, uv] : pairs) {
      const double w0 = co * uv.first - si * uv.second;
      const double w1 = si * uv.first + co * uv.second;
      if (std::abs(w0) > kZeroAmplitude) {
        next.push_back(TermEntry{rest, w0});
      }
      if (std::abs(w1) > kZeroAmplitude) {
        next.push_back(TermEntry{rest | pbit, w1});
      }
    }
    terms_ = std::move(next);
    sort_terms();
  }

  struct MergePlan {
    BasisIndex keep = 0;
    BasisIndex drop = 0;
    int pivot = 0;
    std::int64_t cost = 0;
  };

  /// Exact cost of executing a (keep, drop, pivot) plan: simulate the
  /// unifying CNOTs on the support, then size the greedy control set.
  std::int64_t plan_cost(BasisIndex keep, BasisIndex drop,
                         int pivot) const {
    std::vector<BasisIndex> support = support_indices();
    BasisIndex dif = flip_bit(keep ^ drop, pivot);
    const int want = get_bit(drop, pivot);
    const int dist = popcount(dif);
    while (dif != 0) {
      const int q = std::countr_zero(dif);
      dif = flip_bit(dif, q);
      for (BasisIndex& y : support) {
        if (get_bit(y, pivot) == want) y = flip_bit(y, q);
      }
    }
    const auto controls = greedy_controls(support, keep, pivot);
    return dist +
           rotation_cost(static_cast<int>(controls.size()));
  }

  MergePlan default_plan(BasisIndex a, BasisIndex b) const {
    MergePlan plan;
    plan.keep = std::min(a, b);
    plan.drop = std::max(a, b);
    plan.pivot = std::countr_zero(a ^ b);
    plan.cost = -1;  // not evaluated
    return plan;
  }

  MergePlan select_plan() const {
    if (options_.strategy == MFlowOptions::PairStrategy::kPrefixAdjacent) {
      // Deepest shared prefix == smallest XOR among sorted neighbours.
      BasisIndex best_xor = ~BasisIndex{0};
      std::size_t best_i = 0;
      for (std::size_t i = 0; i + 1 < terms_.size(); ++i) {
        const BasisIndex x = terms_[i].index ^ terms_[i + 1].index;
        if (x < best_xor) {
          best_xor = x;
          best_i = i;
        }
      }
      return default_plan(terms_[best_i].index, terms_[best_i + 1].index);
    }

    // Collect minimum-Hamming-distance candidate pairs. Distance-1 pairs
    // are found in O(m n) via a hash set; otherwise fall back to a scan.
    std::vector<std::pair<BasisIndex, BasisIndex>> candidates;
    std::unordered_map<BasisIndex, std::size_t> where;
    where.reserve(terms_.size() * 2);
    for (std::size_t i = 0; i < terms_.size(); ++i) {
      where.emplace(terms_[i].index, i);
    }
    for (const TermEntry& t : terms_) {
      for (int q = 0; q < n_; ++q) {
        const BasisIndex y = flip_bit(t.index, q);
        if (y > t.index && where.count(y) != 0) {
          candidates.emplace_back(t.index, y);
        }
      }
    }
    if (candidates.empty()) {
      int best = std::numeric_limits<int>::max();
      for (std::size_t i = 0; i < terms_.size(); ++i) {
        for (std::size_t j = i + 1; j < terms_.size(); ++j) {
          const int d = hamming(terms_[i].index, terms_[j].index);
          if (d < best) {
            best = d;
            candidates.clear();
          }
          if (d == best) {
            candidates.emplace_back(terms_[i].index, terms_[j].index);
          }
        }
      }
    }
    QSP_ASSERT(!candidates.empty());
    if (options_.strategy == MFlowOptions::PairStrategy::kGreedyFirst) {
      return default_plan(candidates.front().first,
                          candidates.front().second);
    }
    // Cost-aware selection also considers pairs one above the minimum
    // distance: the extra unifying CNOT is sometimes far cheaper than a
    // large distinguishing control set.
    {
      const int base = hamming(candidates.front().first,
                               candidates.front().second);
      const std::size_t cap = candidates.size() + 8;
      for (std::size_t i = 0; i < terms_.size() && candidates.size() < cap;
           ++i) {
        for (std::size_t j = i + 1;
             j < terms_.size() && candidates.size() < cap; ++j) {
          if (hamming(terms_[i].index, terms_[j].index) == base + 1) {
            candidates.emplace_back(terms_[i].index, terms_[j].index);
          }
        }
      }
    }
    // kCheapest: evaluate a bounded number of candidate pairs over both
    // merge orientations and every pivot choice.
    const std::size_t limit = std::min<std::size_t>(
        candidates.size(),
        static_cast<std::size_t>(std::max(1, options_.cheapest_candidates)));
    MergePlan best_plan = default_plan(candidates.front().first,
                                       candidates.front().second);
    std::int64_t best_cost = std::numeric_limits<std::int64_t>::max();
    for (std::size_t i = 0; i < limit; ++i) {
      const auto [a, b] = candidates[i];
      for (const auto& [keep, drop] :
           {std::pair{a, b}, std::pair{b, a}}) {
        BasisIndex dif = keep ^ drop;
        while (dif != 0) {
          const int pivot = std::countr_zero(dif);
          dif = flip_bit(dif, pivot);
          const std::int64_t cost = plan_cost(keep, drop, pivot);
          if (cost < best_cost) {
            best_cost = cost;
            best_plan = MergePlan{keep, drop, pivot, cost};
          }
        }
      }
    }
    return best_plan;
  }

  int n_;
  MFlowOptions options_;
  Deadline deadline_;
  std::vector<TermEntry> terms_;
  std::vector<Gate> gates_;
};

}  // namespace

MFlowResult mflow_prepare(const QuantumState& target,
                          const MFlowOptions& options) {
  Engine engine(target, options);
  MFlowResult result;
  while (engine.cardinality() > 1) {
    if (engine.expired()) {
      result.timed_out = true;
      return result;
    }
    engine.merge_step();
  }
  engine.finish();
  Circuit forward(target.num_qubits());
  for (const Gate& g : engine.gates()) forward.append(g);
  result.circuit = forward.adjoint();
  return result;
}

MFlowReduction mflow_reduce(
    const QuantumState& target,
    const std::function<bool(const QuantumState&)>& stop,
    const MFlowOptions& options) {
  Engine engine(target, options);
  MFlowReduction result;
  QuantumState current = engine.current_state();
  while (engine.cardinality() > 1 && !stop(current)) {
    if (engine.expired()) {
      result.timed_out = true;
      break;
    }
    engine.merge_step();
    current = engine.current_state();
  }
  result.forward_gates = engine.gates();
  result.reduced = current;
  return result;
}

}  // namespace qsp
