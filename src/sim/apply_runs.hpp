#pragma once
// Masked pair-run decomposition shared by the real (sim/statevector) and
// complex (phase/complex_statevector) simulators. Every two-level gate
// kernel iterates pairs (i, i + 2^target) over indices i with the target
// bit clear and an optional control condition (i & ctrl_mask) ==
// ctrl_value. Those indices form contiguous runs of length
// 2^countr_zero(tbit | ctrl_mask): within a run only bits below the
// lowest constrained bit vary, so the run can be handed to a wide batch
// primitive (util/bitops wideops) instead of testing the condition per
// element. The runs partition the index set exactly, and pairs are
// disjoint, so any run order produces bit-identical amplitudes.

#include <bit>
#include <cstddef>

#include "util/bitops.hpp"

namespace qsp::runs {

/// Invoke fn(lo, len) for each maximal contiguous run of indices i in
/// [0, size) with (i & (1 << target)) == 0 and (i & ctrl_mask) ==
/// ctrl_value. Preconditions: size is a power of two, target < log2(size),
/// ctrl_value is a subset of ctrl_mask, and the target bit is not in
/// ctrl_mask. The partner of each index is i + (1 << target).
template <typename Fn>
void for_each_pair_run(std::size_t size, int target, BasisIndex ctrl_mask,
                       BasisIndex ctrl_value, Fn&& fn) {
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t constrained = tbit | ctrl_mask;
  const std::size_t run = std::size_t{1} << std::countr_zero(constrained);
  // Free bits above the run: the subset enumeration below walks them in
  // ascending order (s = (s - m) & m visits every submask of m once).
  const std::size_t free_high = (size - 1) & ~constrained & ~(run - 1);
  std::size_t s = 0;
  do {
    fn(s | ctrl_value, run);
    s = (s - free_high) & free_high;
  } while (s != 0);
}

}  // namespace qsp::runs
