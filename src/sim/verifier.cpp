#include "sim/verifier.hpp"

#include <cmath>
#include <complex>
#include <sstream>
#include <stdexcept>

#include "phase/complex_statevector.hpp"
#include "sim/statevector.hpp"

namespace qsp {
namespace {

bool has_z_axis_gates(const Circuit& circuit) {
  for (const Gate& g : circuit.gates()) {
    if (g.kind() == GateKind::kRz || g.kind() == GateKind::kUCRz ||
        g.kind() == GateKind::kISwap || g.kind() == GateKind::kRZZ) {
      return true;
    }
  }
  return false;
}

VerificationResult from_fidelity(double fidelity, double tolerance) {
  VerificationResult result;
  result.fidelity = fidelity;
  result.ok = fidelity >= 1.0 - tolerance;
  if (!result.ok) {
    std::ostringstream os;
    os.precision(12);
    os << "fidelity " << fidelity << " below 1 - " << tolerance;
    result.message = os.str();
  }
  return result;
}

}  // namespace

VerificationResult verify_preparation(const Circuit& circuit,
                                      const QuantumState& target,
                                      double tolerance) {
  VerificationResult result;
  if (circuit.num_qubits() < target.num_qubits()) {
    result.message = "circuit register narrower than target";
    return result;
  }
  if (has_z_axis_gates(circuit)) {
    // The real simulator rejects Rz/UCRz; phase-oracle outputs verify on
    // the complex path (which also needs the conjugated inner product).
    return verify_preparation(circuit, ComplexState(target), tolerance);
  }
  Statevector sv(circuit.num_qubits());
  sv.apply(circuit);

  // Inner product against target embedded with ancillas in |0>: the
  // embedded target has the same basis indices (ancillas are high bits).
  // Real amplitudes are self-conjugate, so the plain product is the
  // complex inner product here.
  double ip = 0.0;
  for (const Term& t : target.terms()) {
    ip += sv.amplitudes()[t.index] * t.amplitude;
  }
  return from_fidelity(ip * ip, tolerance);
}

VerificationResult verify_preparation(const Circuit& circuit,
                                      const ComplexState& target,
                                      double tolerance) {
  VerificationResult result;
  if (circuit.num_qubits() < target.num_qubits()) {
    result.message = "circuit register narrower than target";
    return result;
  }
  ComplexStatevector sv(circuit.num_qubits());
  sv.apply(circuit);

  // Conjugate complex inner product <target|prepared>; |ip|^2 is
  // insensitive to global phase but penalizes any relative-phase error.
  std::complex<double> ip{0.0, 0.0};
  for (const ComplexTerm& t : target.terms()) {
    ip += std::conj(t.amplitude) * sv.amplitudes()[t.index];
  }
  return from_fidelity(std::norm(ip), tolerance);
}

void verify_preparation_or_throw(const Circuit& circuit,
                                 const QuantumState& target,
                                 double tolerance) {
  const VerificationResult r = verify_preparation(circuit, target, tolerance);
  if (!r.ok) {
    throw std::runtime_error("verification failed: " + r.message);
  }
}

void verify_preparation_or_throw(const Circuit& circuit,
                                 const ComplexState& target,
                                 double tolerance) {
  const VerificationResult r = verify_preparation(circuit, target, tolerance);
  if (!r.ok) {
    throw std::runtime_error("verification failed: " + r.message);
  }
}

}  // namespace qsp
