#include "sim/verifier.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "sim/statevector.hpp"

namespace qsp {

VerificationResult verify_preparation(const Circuit& circuit,
                                      const QuantumState& target,
                                      double tolerance) {
  VerificationResult result;
  if (circuit.num_qubits() < target.num_qubits()) {
    result.message = "circuit register narrower than target";
    return result;
  }
  Statevector sv(circuit.num_qubits());
  sv.apply(circuit);

  // Inner product against target embedded with ancillas in |0>: the
  // embedded target has the same basis indices (ancillas are high bits).
  double ip = 0.0;
  for (const Term& t : target.terms()) {
    ip += sv.amplitudes()[t.index] * t.amplitude;
  }
  result.fidelity = ip * ip;
  result.ok = result.fidelity >= 1.0 - tolerance;
  if (!result.ok) {
    std::ostringstream os;
    os.precision(12);
    os << "fidelity " << result.fidelity << " below 1 - " << tolerance;
    result.message = os.str();
  }
  return result;
}

void verify_preparation_or_throw(const Circuit& circuit,
                                 const QuantumState& target,
                                 double tolerance) {
  const VerificationResult r = verify_preparation(circuit, target, tolerance);
  if (!r.ok) {
    throw std::runtime_error("verification failed: " + r.message);
  }
}

}  // namespace qsp
