#include "sim/statevector.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "sim/apply_runs.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"

namespace qsp {
namespace {

// Pair runs shorter than this don't amortize the per-run batch dispatch
// (a low target or control bit fragments the index set); the strided
// masked loops below keep the seed shape for those. The wide and strided
// paths are chosen by gate structure alone, never by ISA, so dispatch
// stays bit-invariant. This TU is compiled with -ffp-contract=off so the
// strided element math cannot be FMA-contracted away from the wide
// kernels' fixed shape on -march builds.
constexpr std::size_t kMinWideRun = 8;

std::size_t pair_run_length(int target, BasisIndex ctrl_mask) {
  return std::size_t{1}
         << std::countr_zero((std::size_t{1} << target) | ctrl_mask);
}

}  // namespace

Statevector::Statevector(int num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits < 1 || num_qubits > kMaxQubits) {
    throw std::invalid_argument("Statevector: qubit count out of range");
  }
  amp_.assign(std::size_t{1} << num_qubits, 0.0);
  amp_[0] = 1.0;
}

Statevector::Statevector(const QuantumState& state)
    : num_qubits_(state.num_qubits()), amp_(state.to_dense()) {}

void Statevector::apply_x(int target) {
  const std::size_t stride = std::size_t{1} << target;
  const std::size_t size = amp_.size();
  double* amp = amp_.data();
  if (stride >= kMinWideRun) {
    runs::for_each_pair_run(size, target, 0, 0,
                            [&](std::size_t lo, std::size_t len) {
                              wideops::swap_ranges_d(amp + lo,
                                                     amp + lo + stride, len);
                            });
    return;
  }
  for (std::size_t base = 0; base < size; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      std::swap(amp[i], amp[i + stride]);
    }
  }
}

void Statevector::apply_cnot(const ControlLiteral& c, int target) {
  const std::size_t stride = std::size_t{1} << target;
  const std::size_t size = amp_.size();
  const BasisIndex cbit = BasisIndex{1} << c.qubit;
  const BasisIndex want = c.positive ? cbit : 0;
  double* amp = amp_.data();
  if (pair_run_length(target, cbit) >= kMinWideRun) {
    runs::for_each_pair_run(size, target, cbit, want,
                            [&](std::size_t lo, std::size_t len) {
                              wideops::swap_ranges_d(amp + lo,
                                                     amp + lo + stride, len);
                            });
    return;
  }
  for (std::size_t base = 0; base < size; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      if ((static_cast<BasisIndex>(i) & cbit) == want) {
        std::swap(amp[i], amp[i + stride]);
      }
    }
  }
}

void Statevector::apply_rotation_pairs(int target, double theta,
                                       BasisIndex ctrl_mask,
                                       BasisIndex ctrl_value) {
  // Ry(theta) = [[cos t/2, -sin t/2], [sin t/2, cos t/2]].
  const double co = std::cos(theta / 2);
  const double si = std::sin(theta / 2);
  const std::size_t stride = std::size_t{1} << target;
  const std::size_t size = amp_.size();
  double* amp = amp_.data();
  if (pair_run_length(target, ctrl_mask) >= kMinWideRun) {
    runs::for_each_pair_run(
        size, target, ctrl_mask, ctrl_value,
        [&](std::size_t lo, std::size_t len) {
          wideops::rotate_pairs_d(amp + lo, amp + lo + stride, len, co, si);
        });
    return;
  }
  for (std::size_t base = 0; base < size; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      if ((static_cast<BasisIndex>(i) & ctrl_mask) != ctrl_value) continue;
      const double a = amp[i];
      const double b = amp[i + stride];
      amp[i] = co * a - si * b;
      amp[i + stride] = si * a + co * b;
    }
  }
}

void Statevector::apply_ucry(const Gate& gate) {
  const auto& controls = gate.controls();
  const auto& angles = gate.angles();
  // Precompute (cos, sin) per pattern.
  std::vector<double> co(angles.size()), si(angles.size());
  for (std::size_t s = 0; s < angles.size(); ++s) {
    co[s] = std::cos(angles[s] / 2);
    si[s] = std::sin(angles[s] / 2);
  }
  BasisIndex mask = 0;
  for (const auto& c : controls) mask |= BasisIndex{1} << c.qubit;
  const std::size_t stride = std::size_t{1} << gate.target();
  const std::size_t size = amp_.size();
  double* amp = amp_.data();
  if (pair_run_length(gate.target(), mask) >= kMinWideRun) {
    // Sweep each pattern's control assignment as its own run set: the
    // patterns partition the pairs, so every pair is touched exactly
    // once, just grouped by angle.
    for (std::size_t pattern = 0; pattern < angles.size(); ++pattern) {
      BasisIndex value = 0;
      for (std::size_t b = 0; b < controls.size(); ++b) {
        if ((pattern >> b) & 1) value |= BasisIndex{1} << controls[b].qubit;
      }
      runs::for_each_pair_run(
          size, gate.target(), mask, value,
          [&](std::size_t lo, std::size_t len) {
            wideops::rotate_pairs_d(amp + lo, amp + lo + stride, len,
                                    co[pattern], si[pattern]);
          });
    }
    return;
  }
  for (std::size_t base = 0; base < size; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      std::uint32_t pattern = 0;
      for (std::size_t b = 0; b < controls.size(); ++b) {
        if (get_bit(static_cast<BasisIndex>(i), controls[b].qubit) != 0) {
          pattern |= std::uint32_t{1} << b;
        }
      }
      const double a = amp[i];
      const double bmp = amp[i + stride];
      amp[i] = co[pattern] * a - si[pattern] * bmp;
      amp[i + stride] = si[pattern] * a + co[pattern] * bmp;
    }
  }
}

void Statevector::apply(const Gate& gate) {
  if (gate.max_qubit() >= num_qubits_) {
    throw std::invalid_argument("Statevector::apply: gate exceeds register");
  }
  switch (gate.kind()) {
    case GateKind::kX:
      apply_x(gate.target());
      break;
    case GateKind::kCNOT:
      apply_cnot(gate.controls()[0], gate.target());
      break;
    case GateKind::kRy:
      apply_rotation_pairs(gate.target(), gate.theta(), 0, 0);
      break;
    case GateKind::kCRy:
    case GateKind::kMCRy: {
      BasisIndex mask = 0;
      BasisIndex value = 0;
      for (const auto& c : gate.controls()) {
        mask |= BasisIndex{1} << c.qubit;
        if (c.positive) value |= BasisIndex{1} << c.qubit;
      }
      apply_rotation_pairs(gate.target(), gate.theta(), mask, value);
      break;
    }
    case GateKind::kUCRy:
      apply_ucry(gate);
      break;
    case GateKind::kCZ: {
      // diag(1, 1, 1, -1): negate amplitudes where both wires are set.
      // Real-safe, so the fast simulator keeps CZ-legalized circuits.
      const BasisIndex both = (BasisIndex{1} << gate.controls()[0].qubit) |
                              (BasisIndex{1} << gate.target());
      const BasisIndex size = BasisIndex{1} << num_qubits_;
      for (BasisIndex i = 0; i < size; ++i) {
        if ((i & both) == both) amp_[i] = -amp_[i];
      }
      break;
    }
    case GateKind::kRz:
    case GateKind::kUCRz:
      throw std::invalid_argument(
          "Statevector: z-axis rotations need the complex simulator");
    case GateKind::kISwap:
    case GateKind::kRZZ:
      throw std::invalid_argument(
          "Statevector: iSwap/RZZ need the complex simulator");
  }
}

void Statevector::apply(const Circuit& circuit) {
  if (circuit.num_qubits() > num_qubits_) {
    throw std::invalid_argument("Statevector::apply: register too narrow");
  }
  for (const Gate& g : circuit.gates()) apply(g);
}

double Statevector::norm() const {
  double acc = 0.0;
  for (const double a : amp_) acc += a * a;
  return std::sqrt(acc);
}

double Statevector::inner_product(const Statevector& other) const {
  QSP_ASSERT(other.amp_.size() == amp_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < amp_.size(); ++i) acc += amp_[i] * other.amp_[i];
  return acc;
}

double Statevector::inner_product(const QuantumState& state) const {
  QSP_ASSERT(state.num_qubits() == num_qubits_);
  double acc = 0.0;
  for (const Term& t : state.terms()) acc += amp_[t.index] * t.amplitude;
  return acc;
}

QuantumState Statevector::to_state() const {
  return QuantumState::from_dense(num_qubits_, amp_);
}

}  // namespace qsp
