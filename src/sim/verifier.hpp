#pragma once
// Preparation verifier: checks that a circuit maps |0...0> to the target
// state (up to global phase). Circuits may carry ancilla qubits above the
// target register; those must return to |0>. Circuits containing z-axis
// rotations (phase-oracle outputs) are simulated on the complex
// statevector and compared with the conjugate complex inner product — the
// real path's plain product would mis-score phased amplitudes.

#include <string>

#include "circuit/circuit.hpp"
#include "phase/complex_state.hpp"
#include "state/quantum_state.hpp"

namespace qsp {

struct VerificationResult {
  bool ok = false;
  double fidelity = 0.0;
  std::string message;
};

/// Simulate `circuit` from the ground state and compare against `target`.
/// If the circuit register is wider than the target, the extra (ancilla)
/// qubits are required to end in |0>. Global phase is ignored. Circuits
/// with Rz/UCRz gates route through the complex statevector
/// automatically; real-only circuits keep the cheaper real simulator.
VerificationResult verify_preparation(const Circuit& circuit,
                                      const QuantumState& target,
                                      double tolerance = 1e-7);

/// Complex-target variant: fidelity is |<target|prepared>|^2 with the
/// conjugate inner product, so phased targets score correctly (the
/// non-conjugated product wrongly rejects a correct preparation of
/// (|00> + i|11>)/sqrt(2) and wrongly accepts its phase conjugate).
VerificationResult verify_preparation(const Circuit& circuit,
                                      const ComplexState& target,
                                      double tolerance = 1e-7);

/// Throwing wrappers for tests and examples.
void verify_preparation_or_throw(const Circuit& circuit,
                                 const QuantumState& target,
                                 double tolerance = 1e-7);
void verify_preparation_or_throw(const Circuit& circuit,
                                 const ComplexState& target,
                                 double tolerance = 1e-7);

}  // namespace qsp
