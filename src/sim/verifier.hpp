#pragma once
// Preparation verifier: checks that a circuit maps |0...0> to the target
// state (up to global sign). Circuits may carry ancilla qubits above the
// target register; those must return to |0>.

#include <string>

#include "circuit/circuit.hpp"
#include "state/quantum_state.hpp"

namespace qsp {

struct VerificationResult {
  bool ok = false;
  double fidelity = 0.0;
  std::string message;
};

/// Simulate `circuit` from the ground state and compare against `target`.
/// If the circuit register is wider than the target, the extra (ancilla)
/// qubits are required to end in |0>. Global sign is ignored.
VerificationResult verify_preparation(const Circuit& circuit,
                                      const QuantumState& target,
                                      double tolerance = 1e-7);

/// Throwing wrapper for tests and examples.
void verify_preparation_or_throw(const Circuit& circuit,
                                 const QuantumState& target,
                                 double tolerance = 1e-7);

}  // namespace qsp
