#pragma once
// Dense real-amplitude statevector simulator. All gates in the library are
// real orthogonal matrices, so a double vector suffices; this is the
// verification substrate replacing the paper's Qiskit check (Section VI-A).

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "state/quantum_state.hpp"

namespace qsp {

class Statevector {
 public:
  /// |0...0> on n qubits (n <= kMaxQubits; memory is 8 * 2^n bytes).
  explicit Statevector(int num_qubits);

  /// Start from an arbitrary sparse state.
  explicit Statevector(const QuantumState& state);

  int num_qubits() const { return num_qubits_; }
  const std::vector<double>& amplitudes() const { return amp_; }

  void apply(const Gate& gate);
  void apply(const Circuit& circuit);

  /// L2 norm (should stay 1 up to rounding).
  double norm() const;

  /// <this|other>.
  double inner_product(const Statevector& other) const;

  /// <this|state> against a sparse state.
  double inner_product(const QuantumState& state) const;

  /// Convert back to the sparse representation.
  QuantumState to_state() const;

 private:
  void apply_rotation_pairs(int target, double theta, BasisIndex ctrl_mask,
                            BasisIndex ctrl_value);
  void apply_x(int target);
  void apply_cnot(const ControlLiteral& c, int target);
  void apply_ucry(const Gate& gate);

  int num_qubits_;
  std::vector<double> amp_;
};

}  // namespace qsp
