#include "arch/coupling.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <sstream>
#include <stdexcept>

#include "circuit/cost_model.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"

namespace qsp {

CouplingGraph::CouplingGraph(int num_qubits,
                             std::vector<std::pair<int, int>> edges)
    : num_qubits_(num_qubits),
      adjacency_(static_cast<std::size_t>(num_qubits)) {
  if (num_qubits < 1 || num_qubits > kMaxQubits) {
    throw std::invalid_argument("CouplingGraph: qubit count out of range");
  }
  for (const auto& [a, b] : edges) {
    if (a < 0 || b < 0 || a >= num_qubits || b >= num_qubits || a == b) {
      throw std::invalid_argument("CouplingGraph: bad edge");
    }
    adjacency_[static_cast<std::size_t>(a)].push_back(b);
    adjacency_[static_cast<std::size_t>(b)].push_back(a);
  }
  for (auto& neighbors : adjacency_) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }
  compute_distances();
  if (num_qubits_ <= kSteinerExactQubits && is_connected() &&
      !is_complete()) {
    compute_steiner_table();
  }
}

CouplingGraph CouplingGraph::full(int num_qubits) {
  std::vector<std::pair<int, int>> edges;
  for (int a = 0; a < num_qubits; ++a) {
    for (int b = a + 1; b < num_qubits; ++b) edges.emplace_back(a, b);
  }
  return CouplingGraph(num_qubits, std::move(edges));
}

CouplingGraph CouplingGraph::line(int num_qubits) {
  std::vector<std::pair<int, int>> edges;
  for (int q = 0; q + 1 < num_qubits; ++q) edges.emplace_back(q, q + 1);
  return CouplingGraph(num_qubits, std::move(edges));
}

CouplingGraph CouplingGraph::ring(int num_qubits) {
  std::vector<std::pair<int, int>> edges;
  for (int q = 0; q + 1 < num_qubits; ++q) edges.emplace_back(q, q + 1);
  if (num_qubits > 2) edges.emplace_back(num_qubits - 1, 0);
  return CouplingGraph(num_qubits, std::move(edges));
}

CouplingGraph CouplingGraph::star(int num_qubits) {
  std::vector<std::pair<int, int>> edges;
  for (int q = 1; q < num_qubits; ++q) edges.emplace_back(0, q);
  return CouplingGraph(num_qubits, std::move(edges));
}

CouplingGraph CouplingGraph::grid(int rows, int cols) {
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("CouplingGraph::grid: bad shape");
  }
  std::vector<std::pair<int, int>> edges;
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return CouplingGraph(rows * cols, std::move(edges));
}

CouplingGraph CouplingGraph::heavy_hex(int distance) {
  if (distance < 1 || distance % 2 == 0) {
    throw std::invalid_argument(
        "CouplingGraph::heavy_hex: code distance must be odd and positive");
  }
  const int d = distance;
  const int width = 2 * d - 1;
  std::vector<std::pair<int, int>> edges;
  auto id = [width](int r, int c) { return r * width + c; };
  for (int r = 0; r < d; ++r) {
    for (int c = 0; c + 1 < width; ++c) {
      edges.emplace_back(id(r, c), id(r, c + 1));
    }
  }
  int next = d * width;
  for (int gap = 0; gap + 1 < d; ++gap) {
    const int offset = gap % 2 == 0 ? 0 : 2;
    for (int c = offset; c < width; c += 4) {
      edges.emplace_back(id(gap, c), next);
      edges.emplace_back(next, id(gap + 1, c));
      ++next;
    }
  }
  return CouplingGraph(next, std::move(edges));
}

CouplingGraph CouplingGraph::induced(const std::vector<int>& qubits) const {
  if (qubits.empty()) {
    throw std::invalid_argument("CouplingGraph::induced: empty qubit set");
  }
  std::vector<bool> seen(static_cast<std::size_t>(num_qubits_), false);
  for (const int q : qubits) {
    if (q < 0 || q >= num_qubits_ || seen[static_cast<std::size_t>(q)]) {
      throw std::invalid_argument(
          "CouplingGraph::induced: qubits must be distinct device ids");
    }
    seen[static_cast<std::size_t>(q)] = true;
  }
  const int k = static_cast<int>(qubits.size());
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      if (has_edge(qubits[static_cast<std::size_t>(i)],
                   qubits[static_cast<std::size_t>(j)])) {
        edges.emplace_back(i, j);
      }
    }
  }
  return CouplingGraph(k, std::move(edges));
}

std::vector<int> CouplingGraph::connected_superset(
    std::vector<int> qubits) const {
  if (qubits.empty()) {
    throw std::invalid_argument(
        "CouplingGraph::connected_superset: empty qubit set");
  }
  std::sort(qubits.begin(), qubits.end());
  qubits.erase(std::unique(qubits.begin(), qubits.end()), qubits.end());
  for (const int q : qubits) {
    if (q < 0 || q >= num_qubits_) {
      throw std::invalid_argument(
          "CouplingGraph::connected_superset: qubit out of range");
    }
  }
  while (true) {
    // Fragment labels of the induced subgraph on the current set.
    std::vector<int> label(static_cast<std::size_t>(num_qubits_), -1);
    for (const int q : qubits) label[static_cast<std::size_t>(q)] = 0;
    int fragments = 0;
    for (const int seed : qubits) {
      if (label[static_cast<std::size_t>(seed)] != 0) continue;
      ++fragments;
      std::deque<int> queue{seed};
      label[static_cast<std::size_t>(seed)] = fragments;
      while (!queue.empty()) {
        const int u = queue.front();
        queue.pop_front();
        for (const int v : adjacency_[static_cast<std::size_t>(u)]) {
          if (label[static_cast<std::size_t>(v)] == 0) {
            label[static_cast<std::size_t>(v)] = fragments;
            queue.push_back(v);
          }
        }
      }
    }
    if (fragments <= 1) break;
    // Join the closest pair of fragments through one shortest path. The
    // distance() call throws for disconnected devices, which is the right
    // failure: no superset can connect them.
    int best_a = -1, best_b = -1, best_d = -1;
    for (const int a : qubits) {
      for (const int b : qubits) {
        if (label[static_cast<std::size_t>(a)] >=
            label[static_cast<std::size_t>(b)]) {
          continue;
        }
        const int dist_ab = distance(a, b);
        if (best_d < 0 || dist_ab < best_d) {
          best_a = a;
          best_b = b;
          best_d = dist_ab;
        }
      }
    }
    QSP_ASSERT(best_a >= 0);
    for (const int q : shortest_path(best_a, best_b)) {
      if (label[static_cast<std::size_t>(q)] <= 0) qubits.push_back(q);
    }
    std::sort(qubits.begin(), qubits.end());
    qubits.erase(std::unique(qubits.begin(), qubits.end()), qubits.end());
  }
  return qubits;
}

void CouplingGraph::compute_distances() {
  const auto n = static_cast<std::size_t>(num_qubits_);
  distance_.assign(n, std::vector<int>(n, -1));
  for (std::size_t s = 0; s < n; ++s) {
    auto& dist = distance_[s];
    dist[s] = 0;
    std::deque<int> queue{static_cast<int>(s)};
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (const int v : adjacency_[static_cast<std::size_t>(u)]) {
        if (dist[static_cast<std::size_t>(v)] < 0) {
          dist[static_cast<std::size_t>(v)] =
              dist[static_cast<std::size_t>(u)] + 1;
          queue.push_back(v);
        }
      }
    }
  }
}

void CouplingGraph::compute_steiner_table() {
  // Dreyfus-Wagner over every terminal subset with unit edge weights:
  // dp[mask][v] = fewest edges of a connected subgraph spanning the
  // terminals in `mask` plus vertex v. A tree either branches at v (split
  // of `mask` into two halves both rooted at v) or reaches v by a path
  // from the branching vertex u (dp[mask][u] + dist(u, v)).
  constexpr std::int16_t kUnreached = std::int16_t{0x3FFF};
  const int n = num_qubits_;
  const std::size_t size = std::size_t{1} << n;
  const auto at = [n](std::uint32_t mask, int v) {
    return static_cast<std::size_t>(mask) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(v);
  };
  std::vector<std::int16_t> dp(size * static_cast<std::size_t>(n),
                               kUnreached);
  for (int t = 0; t < n; ++t) {
    for (int v = 0; v < n; ++v) {
      dp[at(1u << t, v)] = static_cast<std::int16_t>(
          distance_[static_cast<std::size_t>(t)][static_cast<std::size_t>(
              v)]);
    }
  }
  std::vector<std::int16_t> best(static_cast<std::size_t>(n));
  for (std::uint32_t mask = 1; mask < size; ++mask) {
    if ((mask & (mask - 1)) == 0) continue;  // singles are the base case
    const std::uint32_t low = mask & (0u - mask);
    for (int v = 0; v < n; ++v) {
      std::int16_t b = kUnreached;
      for (std::uint32_t sub = (mask - 1) & mask; sub != 0;
           sub = (sub - 1) & mask) {
        if ((sub & low) == 0) continue;  // count each split once
        const std::int16_t joined = static_cast<std::int16_t>(
            dp[at(sub, v)] + dp[at(mask ^ sub, v)]);
        b = std::min(b, joined);
      }
      best[static_cast<std::size_t>(v)] = b;
    }
    for (int v = 0; v < n; ++v) {
      std::int16_t d = kUnreached;
      for (int u = 0; u < n; ++u) {
        const std::int16_t reached = static_cast<std::int16_t>(
            best[static_cast<std::size_t>(u)] +
            distance_[static_cast<std::size_t>(u)][static_cast<std::size_t>(
                v)]);
        d = std::min(d, reached);
      }
      dp[at(mask, v)] = d;
    }
  }
  steiner_.assign(size, 0);
  for (std::uint32_t mask = 1; mask < size; ++mask) {
    if ((mask & (mask - 1)) == 0) continue;
    const std::uint32_t low = mask & (0u - mask);
    steiner_[mask] = dp[at(mask ^ low, std::countr_zero(low))];
  }
}

std::int64_t CouplingGraph::steiner_edges(std::uint32_t terminals) const {
  if ((terminals >> num_qubits_) != 0) {  // num_qubits_ <= kMaxQubits < 32
    throw std::invalid_argument(
        "CouplingGraph::steiner_edges: terminal beyond the register");
  }
  const int k = popcount(terminals);
  if (k <= 1) return 0;
  if (is_complete()) return k - 1;
  if (!steiner_.empty()) return steiner_[terminals];
  // Fallback for large devices: a connected subgraph spanning k terminals
  // has at least k - 1 edges and contains a path between every terminal
  // pair, so the largest pairwise distance also lower-bounds it.
  std::vector<int> set;
  for (int q = 0; q < num_qubits_; ++q) {
    if ((terminals >> q) & 1u) set.push_back(q);
  }
  std::int64_t bound = k - 1;
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = i + 1; j < set.size(); ++j) {
      bound = std::max(
          bound, static_cast<std::int64_t>(distance(set[i], set[j])));
    }
  }
  return bound;
}

bool CouplingGraph::has_edge(int a, int b) const {
  QSP_ASSERT(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_);
  const auto& neighbors = adjacency_[static_cast<std::size_t>(a)];
  return std::binary_search(neighbors.begin(), neighbors.end(), b);
}

int CouplingGraph::distance(int a, int b) const {
  QSP_ASSERT(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_);
  const int d = distance_[static_cast<std::size_t>(a)]
                         [static_cast<std::size_t>(b)];
  if (d < 0) {
    throw std::invalid_argument("CouplingGraph: qubits not connected");
  }
  return d;
}

bool CouplingGraph::is_complete() const {
  for (int a = 0; a < num_qubits_; ++a) {
    if (static_cast<int>(adjacency_[static_cast<std::size_t>(a)].size()) !=
        num_qubits_ - 1) {
      return false;
    }
  }
  return true;
}

bool CouplingGraph::is_connected() const {
  const auto& d0 = distance_[0];
  return std::all_of(d0.begin(), d0.end(), [](int d) { return d >= 0; });
}

std::int64_t CouplingGraph::routed_cnot_cost(int control, int target) const {
  const int d = distance(control, target);
  QSP_ASSERT(d >= 1);
  return d == 1 ? 1 : 4 * (static_cast<std::int64_t>(d) - 1);
}

std::int64_t CouplingGraph::routed_rotation_cost(
    const std::vector<ControlLiteral>& controls, int target) const {
  const int c = static_cast<int>(controls.size());
  if (c == 0) return 0;
  // Gray-code lowering: control bit b fires 2^(c-1-b) times; the top bit
  // pays one extra closing CNOT. Sort controls near-to-far so the most
  // frequently used bit is the cheapest.
  std::vector<std::int64_t> per_use;
  per_use.reserve(static_cast<std::size_t>(c));
  for (const ControlLiteral& lit : controls) {
    per_use.push_back(routed_cnot_cost(lit.qubit, target));
  }
  std::sort(per_use.begin(), per_use.end());
  std::int64_t total = 0;
  for (int b = 0; b < c; ++b) {
    const std::int64_t uses =
        (std::int64_t{1} << (c - 1 - b)) + (b == c - 1 ? 1 : 0);
    total += uses * per_use[static_cast<std::size_t>(b)];
  }
  return total;
}

std::vector<int> CouplingGraph::shortest_path(int from, int to) const {
  const int d = distance(from, to);
  std::vector<int> path{from};
  int cur = from;
  for (int step = d; step > 0; --step) {
    for (const int v : adjacency_[static_cast<std::size_t>(cur)]) {
      if (distance(v, to) == step - 1) {
        path.push_back(v);
        cur = v;
        break;
      }
    }
  }
  QSP_ASSERT(cur == to);
  return path;
}

std::string CouplingGraph::fingerprint() const {
  std::ostringstream os;
  os << 'n' << num_qubits_ << ':';
  // Neighbor lists are sorted in the constructor, so this enumeration is
  // already canonical for a given edge set.
  for (int a = 0; a < num_qubits_; ++a) {
    for (const int b : adjacency_[static_cast<std::size_t>(a)]) {
      if (b > a) os << a << '-' << b << ';';
    }
  }
  return os.str();
}

std::string CouplingGraph::to_string() const {
  std::ostringstream os;
  os << "coupling(" << num_qubits_ << " qubits:";
  for (int a = 0; a < num_qubits_; ++a) {
    for (const int b : adjacency_[static_cast<std::size_t>(a)]) {
      if (b > a) os << ' ' << a << '-' << b;
    }
  }
  os << ')';
  return os.str();
}

}  // namespace qsp
