#include "arch/coupling.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <stdexcept>

#include "circuit/cost_model.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"

namespace qsp {

CouplingGraph::CouplingGraph(int num_qubits,
                             std::vector<std::pair<int, int>> edges)
    : num_qubits_(num_qubits),
      adjacency_(static_cast<std::size_t>(num_qubits)) {
  if (num_qubits < 1 || num_qubits > kMaxQubits) {
    throw std::invalid_argument("CouplingGraph: qubit count out of range");
  }
  for (const auto& [a, b] : edges) {
    if (a < 0 || b < 0 || a >= num_qubits || b >= num_qubits || a == b) {
      throw std::invalid_argument("CouplingGraph: bad edge");
    }
    adjacency_[static_cast<std::size_t>(a)].push_back(b);
    adjacency_[static_cast<std::size_t>(b)].push_back(a);
  }
  for (auto& neighbors : adjacency_) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }
  compute_distances();
}

CouplingGraph CouplingGraph::full(int num_qubits) {
  std::vector<std::pair<int, int>> edges;
  for (int a = 0; a < num_qubits; ++a) {
    for (int b = a + 1; b < num_qubits; ++b) edges.emplace_back(a, b);
  }
  return CouplingGraph(num_qubits, std::move(edges));
}

CouplingGraph CouplingGraph::line(int num_qubits) {
  std::vector<std::pair<int, int>> edges;
  for (int q = 0; q + 1 < num_qubits; ++q) edges.emplace_back(q, q + 1);
  return CouplingGraph(num_qubits, std::move(edges));
}

CouplingGraph CouplingGraph::ring(int num_qubits) {
  std::vector<std::pair<int, int>> edges;
  for (int q = 0; q + 1 < num_qubits; ++q) edges.emplace_back(q, q + 1);
  if (num_qubits > 2) edges.emplace_back(num_qubits - 1, 0);
  return CouplingGraph(num_qubits, std::move(edges));
}

CouplingGraph CouplingGraph::star(int num_qubits) {
  std::vector<std::pair<int, int>> edges;
  for (int q = 1; q < num_qubits; ++q) edges.emplace_back(0, q);
  return CouplingGraph(num_qubits, std::move(edges));
}

CouplingGraph CouplingGraph::grid(int rows, int cols) {
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("CouplingGraph::grid: bad shape");
  }
  std::vector<std::pair<int, int>> edges;
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return CouplingGraph(rows * cols, std::move(edges));
}

void CouplingGraph::compute_distances() {
  const auto n = static_cast<std::size_t>(num_qubits_);
  distance_.assign(n, std::vector<int>(n, -1));
  for (std::size_t s = 0; s < n; ++s) {
    auto& dist = distance_[s];
    dist[s] = 0;
    std::deque<int> queue{static_cast<int>(s)};
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (const int v : adjacency_[static_cast<std::size_t>(u)]) {
        if (dist[static_cast<std::size_t>(v)] < 0) {
          dist[static_cast<std::size_t>(v)] =
              dist[static_cast<std::size_t>(u)] + 1;
          queue.push_back(v);
        }
      }
    }
  }
}

bool CouplingGraph::has_edge(int a, int b) const {
  QSP_ASSERT(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_);
  const auto& neighbors = adjacency_[static_cast<std::size_t>(a)];
  return std::binary_search(neighbors.begin(), neighbors.end(), b);
}

int CouplingGraph::distance(int a, int b) const {
  QSP_ASSERT(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_);
  const int d = distance_[static_cast<std::size_t>(a)]
                         [static_cast<std::size_t>(b)];
  if (d < 0) {
    throw std::invalid_argument("CouplingGraph: qubits not connected");
  }
  return d;
}

bool CouplingGraph::is_complete() const {
  for (int a = 0; a < num_qubits_; ++a) {
    if (static_cast<int>(adjacency_[static_cast<std::size_t>(a)].size()) !=
        num_qubits_ - 1) {
      return false;
    }
  }
  return true;
}

bool CouplingGraph::is_connected() const {
  const auto& d0 = distance_[0];
  return std::all_of(d0.begin(), d0.end(), [](int d) { return d >= 0; });
}

std::int64_t CouplingGraph::routed_cnot_cost(int control, int target) const {
  const int d = distance(control, target);
  QSP_ASSERT(d >= 1);
  return d == 1 ? 1 : 4 * (static_cast<std::int64_t>(d) - 1);
}

std::int64_t CouplingGraph::routed_rotation_cost(
    const std::vector<ControlLiteral>& controls, int target) const {
  const int c = static_cast<int>(controls.size());
  if (c == 0) return 0;
  // Gray-code lowering: control bit b fires 2^(c-1-b) times; the top bit
  // pays one extra closing CNOT. Sort controls near-to-far so the most
  // frequently used bit is the cheapest.
  std::vector<std::int64_t> per_use;
  per_use.reserve(static_cast<std::size_t>(c));
  for (const ControlLiteral& lit : controls) {
    per_use.push_back(routed_cnot_cost(lit.qubit, target));
  }
  std::sort(per_use.begin(), per_use.end());
  std::int64_t total = 0;
  for (int b = 0; b < c; ++b) {
    const std::int64_t uses =
        (std::int64_t{1} << (c - 1 - b)) + (b == c - 1 ? 1 : 0);
    total += uses * per_use[static_cast<std::size_t>(b)];
  }
  return total;
}

std::vector<int> CouplingGraph::shortest_path(int from, int to) const {
  const int d = distance(from, to);
  std::vector<int> path{from};
  int cur = from;
  for (int step = d; step > 0; --step) {
    for (const int v : adjacency_[static_cast<std::size_t>(cur)]) {
      if (distance(v, to) == step - 1) {
        path.push_back(v);
        cur = v;
        break;
      }
    }
  }
  QSP_ASSERT(cur == to);
  return path;
}

std::string CouplingGraph::to_string() const {
  std::ostringstream os;
  os << "coupling(" << num_qubits_ << " qubits:";
  for (int a = 0; a < num_qubits_; ++a) {
    for (const int b : adjacency_[static_cast<std::size_t>(a)]) {
      if (b > a) os << ' ' << a << '-' << b;
    }
  }
  os << ')';
  return os.str();
}

}  // namespace qsp
