#include "arch/routing.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/assert.hpp"

namespace qsp {

void emit_routed_cnot(Circuit& out, const std::vector<int>& path,
                      bool positive) {
  QSP_ASSERT(path.size() >= 2);
  const int control = path.front();
  if (!positive) out.append(Gate::x(control));
  if (path.size() == 2) {
    out.append(Gate::cnot(control, path.back()));
  } else {
    const std::size_t k = path.size() - 1;  // distance
    auto ascend = [&](std::size_t first) {
      for (std::size_t i = first; i < k; ++i) {
        out.append(Gate::cnot(path[i], path[i + 1]));
      }
    };
    auto descend = [&](std::size_t first) {
      for (std::size_t i = k - 1; i + 1 > first + 1; --i) {
        out.append(Gate::cnot(path[i - 1], path[i]));
      }
    };
    // A: accumulate prefix parities down the chain (k gates).
    ascend(0);
    // B: restore intermediates top-down (k-1 gates).
    descend(0);
    // A', B': same without the control's first link, cancelling the
    // intermediate contributions from p_1..p_{k-1} on the target.
    ascend(1);
    descend(1);
  }
  if (!positive) out.append(Gate::x(control));
}

Circuit route_circuit(const Circuit& circuit, const CouplingGraph& coupling,
                      const LoweringOptions& lowering) {
  if (coupling.num_qubits() < circuit.num_qubits()) {
    throw std::invalid_argument("route_circuit: coupling graph too small");
  }
  // Order every multiplexor's controls near-to-far before lowering: the
  // gray-code construction uses control bit b for 2^(c-1-b) CNOTs, so the
  // nearest wire should fire most often. This realizes exactly the
  // CouplingGraph::routed_rotation_cost model.
  Circuit reordered(circuit.num_qubits());
  for (const Gate& g : circuit.gates()) {
    if ((g.kind() == GateKind::kMCRy || g.kind() == GateKind::kUCRy) &&
        g.num_controls() >= 2) {
      std::vector<int> order;
      for (const auto& c : g.controls()) order.push_back(c.qubit);
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return coupling.routed_cnot_cost(a, g.target()) <
               coupling.routed_cnot_cost(b, g.target());
      });
      reordered.append(reorder_ucry_controls(g, order));
    } else {
      reordered.append(g);
    }
  }
  const Circuit lowered = lower(reordered, lowering);
  // Size the output by the device, not the logical circuit: routed paths
  // legitimately traverse device qubits above the logical register (e.g. a
  // 2-qubit CNOT routed through the center of a star).
  Circuit out(coupling.num_qubits());
  for (const Gate& g : lowered.gates()) {
    if (g.kind() != GateKind::kCNOT) {
      out.append(g);
      continue;
    }
    const ControlLiteral c = g.controls()[0];
    if (coupling.has_edge(c.qubit, g.target())) {
      out.append(g);
      continue;
    }
    emit_routed_cnot(out, coupling.shortest_path(c.qubit, g.target()),
                     c.positive);
  }
  return out;
}

bool respects_coupling(const Circuit& circuit,
                       const CouplingGraph& coupling) {
  return respects_coupling(circuit, coupling, Target::cnot());
}

bool respects_coupling(const Circuit& circuit, const CouplingGraph& coupling,
                       const Target& target) {
  for (const Gate& g : circuit.gates()) {
    // Only the target's native gates pass: composite rotations
    // (CRy/MCRy/UCRy), negative controls and off-target two-qubit kinds
    // must be lowered away first, so an un-lowered circuit never passes
    // conformance by accident.
    if (!target.is_native(g)) return false;
    const auto qubits = g.qubits();
    if (qubits.size() <= 1) continue;
    if (!coupling.has_edge(qubits[0], qubits[1])) return false;
  }
  return true;
}

}  // namespace qsp
