#pragma once
// Routing of logical circuits onto a coupling graph. Long-range CNOTs are
// expanded with the nearest-neighbour parity ladder (4(d-1) CNOTs, no
// ancilla, no SWAP overhead); composite rotations are lowered first so
// every emitted two-qubit gate sits on an edge.

#include "arch/coupling.hpp"
#include "circuit/circuit.hpp"
#include "circuit/lowering.hpp"

namespace qsp {

/// Expand one long-range CNOT along `path` (first element: control, last:
/// target) into adjacent CNOTs. The construction sends the control's
/// parity down the chain and cleans up after itself:
///   A  = CX(p0->p1) ... CX(p_{k-1}->p_k)     accumulate prefixes
///   B  = CX(p_{k-2}->p_{k-1}) ... CX(p0->p1) restore intermediates
///   A' = A without p0's gate, B' = B without p0's gate
/// A B A' B' leaves p_k ^= p_0 and everything else unchanged: 4(k-1)
/// CNOTs for distance k >= 2.
void emit_routed_cnot(Circuit& out, const std::vector<int>& path,
                      bool positive);

/// Rewrite `circuit` so every CNOT acts on a coupling edge. Composite
/// gates (CRy/MCRy/UCRy) are lowered to {X, Ry, CNOT} first. The output
/// register is sized by the device (`coupling.num_qubits()`): routed
/// ladders may pass through device qubits above the logical register,
/// which always return to |0> (the verifier treats them as ancillas).
Circuit route_circuit(const Circuit& circuit, const CouplingGraph& coupling,
                      const LoweringOptions& lowering = {});

/// True if the circuit is native for the device: 1-qubit gates plus
/// positively controlled CNOTs on coupling edges only. Composite
/// rotations (CRy/MCRy/UCRy) and negative controls fail conformance even
/// when their wires touch an edge — lower/route first.
bool respects_coupling(const Circuit& circuit,
                       const CouplingGraph& coupling);

/// Target-aware conformance: 1-qubit gates plus `target`'s native
/// two-qubit gate on coupling edges only (Target::is_native per gate plus
/// the edge check). With the CNOT target this is exactly the overload
/// above; legalized circuits check against their own backend.
bool respects_coupling(const Circuit& circuit, const CouplingGraph& coupling,
                       const Target& target);

}  // namespace qsp
