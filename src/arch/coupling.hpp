#pragma once
// Coupling constraints. The paper's canonicalization assumes "a symmetric
// coupling graph" (Section V-B) and motivates CNOT minimization by the
// coupling constraints CNOTs introduce (Section I). This module makes the
// dependence explicit: a coupling graph with routed CNOT costs, so the
// exact synthesis can optimize for a real topology instead of all-to-all.

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace qsp {

class CouplingGraph {
 public:
  /// Build from an explicit undirected edge list (CNOTs run both ways).
  CouplingGraph(int num_qubits, std::vector<std::pair<int, int>> edges);

  static CouplingGraph full(int num_qubits);
  static CouplingGraph line(int num_qubits);
  static CouplingGraph ring(int num_qubits);
  /// Star with qubit 0 at the center.
  static CouplingGraph star(int num_qubits);
  static CouplingGraph grid(int rows, int cols);

  int num_qubits() const { return num_qubits_; }
  bool has_edge(int a, int b) const;
  /// BFS hop distance; throws if the graph is disconnected between a, b.
  int distance(int a, int b) const;
  bool is_complete() const;
  bool is_connected() const;

  /// Routed CNOT cost: 1 on an edge, else the nearest-neighbour parity
  /// ladder 4*(d - 1) (see routing.hpp).
  std::int64_t routed_cnot_cost(int control, int target) const;

  /// Routed cost of a (multi-)controlled rotation: the gray-code lowering
  /// uses control bit b for 2^(c-1-b) CNOTs (the top bit once more), so
  /// controls are assigned far-to-near to minimize the total.
  std::int64_t routed_rotation_cost(
      const std::vector<ControlLiteral>& controls, int target) const;

  /// Some shortest path between two qubits (inclusive endpoints).
  std::vector<int> shortest_path(int from, int to) const;

  std::string to_string() const;

 private:
  int num_qubits_;
  std::vector<std::vector<int>> adjacency_;
  std::vector<std::vector<int>> distance_;  // -1 = unreachable

  void compute_distances();
};

}  // namespace qsp
