#pragma once
// Coupling constraints. The paper's canonicalization assumes "a symmetric
// coupling graph" (Section V-B) and motivates CNOT minimization by the
// coupling constraints CNOTs introduce (Section I). This module makes the
// dependence explicit: a coupling graph with routed CNOT costs, so the
// exact synthesis can optimize for a real topology instead of all-to-all.

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace qsp {

class CouplingGraph {
 public:
  /// Build from an explicit undirected edge list (CNOTs run both ways).
  CouplingGraph(int num_qubits, std::vector<std::pair<int, int>> edges);

  static CouplingGraph full(int num_qubits);
  static CouplingGraph line(int num_qubits);
  static CouplingGraph ring(int num_qubits);
  /// Star with qubit 0 at the center.
  static CouplingGraph star(int num_qubits);
  static CouplingGraph grid(int rows, int cols);
  /// IBM-style heavy-hex lattice patch for odd code distance d: d "heavy"
  /// rows of 2d-1 qubits (alternating data/flag wires, consecutive columns
  /// adjacent) joined by bridge qubits every fourth column, with the
  /// bridge columns offset by two between consecutive row gaps — the
  /// Falcon/Eagle degree-<=3 hexagon motif. Row r, column c is qubit
  /// r*(2d-1)+c; bridges are appended after all rows in (gap, column)
  /// order. Throws for even d and for patches beyond kMaxQubits (d <= 3
  /// with the current 24-qubit BasisIndex).
  static CouplingGraph heavy_hex(int distance);

  int num_qubits() const { return num_qubits_; }
  bool has_edge(int a, int b) const;
  /// BFS hop distance; throws if the graph is disconnected between a, b.
  int distance(int a, int b) const;
  bool is_complete() const;
  bool is_connected() const;

  /// Induced subgraph on `qubits` (distinct device ids): new qubit i is
  /// device qubit qubits[i]; an edge survives iff both endpoints are kept.
  CouplingGraph induced(const std::vector<int>& qubits) const;

  /// Smallest-effort connected superset of `qubits`: while the induced
  /// subgraph is disconnected, the closest pair of fragments (by device
  /// hop distance, ties toward smaller ids) is joined through one device
  /// shortest path. Returns the chosen device qubits in ascending order.
  /// The result always induces a connected subgraph; used by the workflow
  /// to host an entangled core whose wires are spread across the device.
  std::vector<int> connected_superset(std::vector<int> qubits) const;

  /// Lower bound on the number of edges of any connected subgraph of the
  /// device spanning the `terminals` bitmask (bit q = qubit q): the unit
  /// Steiner-tree size. Exact (Dreyfus-Wagner, precomputed per graph) for
  /// devices up to kSteinerExactQubits; larger devices fall back to
  /// max(k - 1, max pairwise terminal distance), which is still a valid
  /// lower bound. 0 for fewer than two terminals; complete graphs answer
  /// k - 1 without a table.
  std::int64_t steiner_edges(std::uint32_t terminals) const;

  /// Largest device for which steiner_edges is exact.
  static constexpr int kSteinerExactQubits = 12;

  /// Routed CNOT cost: 1 on an edge, else the nearest-neighbour parity
  /// ladder 4*(d - 1) (see routing.hpp).
  std::int64_t routed_cnot_cost(int control, int target) const;

  /// Routed cost of a (multi-)controlled rotation: the gray-code lowering
  /// uses control bit b for 2^(c-1-b) CNOTs (the top bit once more), so
  /// controls are assigned far-to-near to minimize the total.
  std::int64_t routed_rotation_cost(
      const std::vector<ControlLiteral>& controls, int target) const;

  /// Some shortest path between two qubits (inclusive endpoints).
  std::vector<int> shortest_path(int from, int to) const;

  /// Stable identity string: qubit count plus the sorted undirected edge
  /// list. Equal fingerprints imply identical routed-cost surfaces, so the
  /// equivalence cache may share templates across graphs with the same
  /// fingerprint (e.g. identical induced host patches on different
  /// devices).
  std::string fingerprint() const;

  std::string to_string() const;

 private:
  int num_qubits_;
  std::vector<std::vector<int>> adjacency_;
  std::vector<std::vector<int>> distance_;  // -1 = unreachable
  /// steiner_[mask] = exact unit Steiner-tree size for the terminal set
  /// `mask`; empty when the graph is too large, complete, or disconnected.
  std::vector<std::int16_t> steiner_;

  void compute_distances();
  void compute_steiner_table();
};

}  // namespace qsp
